//! Integration: the "how a computer runs a program" slice, across crates.
//!
//! These tests pin the *agreements* between independently implemented
//! layers: the gate-level ALU, the behavioral ALU, the `bits` arithmetic
//! semantics, and the `asm` emulator's EFLAGS must all tell the same
//! story about the same operations — the vertical slice is only a slice
//! if its layers line up.

use circuits::alu::{build_alu, eval, run_alu, AluOp};
use circuits::Circuit;

/// Structural gates ↔ behavioral ALU ↔ bits::arith ↔ asm EFLAGS, on the
/// same operand pairs.
#[test]
fn four_layers_agree_on_add_and_sub() {
    let mut c = Circuit::new();
    let pins = build_alu(&mut c, 8);
    let cases = [
        (0x7Fu64, 0x01u64),
        (0xFF, 0x01),
        (0x80, 0xFF),
        (0x00, 0x00),
        (0x12, 0x34),
        (0xAB, 0xCD),
    ];
    for (a, b) in cases {
        for (op, bits_result) in [
            (AluOp::Add, bits::arith::add(8, a, b).unwrap()),
            (AluOp::Sub, bits::arith::sub(8, a, b).unwrap()),
        ] {
            // Layer 1: gate-level netlist.
            let (sv, sf) = run_alu(&mut c, &pins, op, a, b);
            // Layer 2: behavioral ALU.
            let (bv, bf) = eval(op, 8, a, b);
            assert_eq!(sv, bv, "{op:?} {a:#x},{b:#x}");
            assert_eq!(sf, bf);
            // Layer 3: bits::arith.
            assert_eq!(sv, bits_result.value);
            assert_eq!(sf.cf, bits_result.flags.cf);
            assert_eq!(sf.of, bits_result.flags.of);
            assert_eq!(sf.zf, bits_result.flags.zf);
            assert_eq!(sf.sf, bits_result.flags.sf);

            // Layer 4: the asm emulator at width 32 on sign-extended
            // operands (same signed semantics).
            let t8 = bits::Twos::new(8).unwrap();
            let a32 = t8.sign_extend(a, 32).unwrap() as u32;
            let b32 = t8.sign_extend(b, 32).unwrap() as u32;
            let mnem = if op == AluOp::Add { "addl" } else { "subl" };
            let src = format!(
                "movl ${}, %eax\nmovl ${}, %ebx\n{mnem} %ebx, %eax\nhlt\n",
                a32 as i32, b32 as i32
            );
            let prog = asm::assemble(&src).unwrap();
            let mut m = asm::Machine::new();
            m.load(&prog).unwrap();
            m.run(100).unwrap();
            // Width changes which wraps happen (0x7F+1 overflows 8-bit but
            // not 32-bit), so the exact cross-width law is: the 32-bit
            // result truncated back to 8 bits equals the 8-bit result.
            assert_eq!(
                m.reg(asm::Reg::Eax) as u64 & 0xFF,
                bits_result.value,
                "{mnem} {a:#x},{b:#x}"
            );
        }
    }
}

/// tinyc-compiled C runs the same algorithm as the hand-built SWAT-16
/// program and the pure-Rust reference.
#[test]
fn three_implementations_of_sum_1_to_n() {
    let n = 30u16;
    let reference: u32 = (1..=n as u32).sum();

    // tinyc → asm emulator.
    let (ret, _) = asm::tinyc::run(&format!(
        "int main() {{ int i = 1; int acc = 0; while (i <= {n}) {{ acc = acc + i; i = i + 1; }} return acc; }}"
    ))
    .unwrap();
    assert_eq!(ret as u32, reference);

    // SWAT-16 CPU.
    let mut cpu = circuits::cpu::Cpu::new();
    cpu.load_program(&circuits::cpu::sum_1_to_n_program(n as u8))
        .unwrap();
    cpu.run(100_000).unwrap();
    assert_eq!(cpu.regs[1] as u32, reference);
}

/// The compiled program's stack discipline survives the debugger's
/// breakpoint/step machinery (frames on, frames off).
#[test]
fn debugger_preserves_execution_semantics() {
    let src = r#"
        int f(int a, int b) { return a * b + 1; }
        int main() { return f(6, 7); }
    "#;
    // Straight run.
    let (plain, _) = asm::tinyc::run(src).unwrap();
    // Debugged run with a breakpoint hit along the way.
    let asm_text = asm::tinyc::compile(src).unwrap();
    let prog = asm::assemble(&asm_text).unwrap();
    let mut dbg = asm::debugger::Debugger::new(prog).unwrap();
    assert!(dbg.set_breakpoint("fn_f").is_some());
    let mut stops = 0;
    loop {
        match dbg.cont() {
            asm::debugger::StopReason::Breakpoint(_) => stops += 1,
            asm::debugger::StopReason::Halted => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(stops, 1);
    assert_eq!(dbg.machine.reg(asm::Reg::Eax) as i32, plain);
    assert_eq!(plain, 43);
}

/// The cache's view of a program's accesses matches the pattern
/// generator's intent: the emulator's memory-heavy loop really does
/// produce the stride the cache model punishes.
#[test]
fn emulated_loop_traffic_through_the_cache_model() {
    use memsim::cache::{Cache, CacheConfig};
    use memsim::trace::{AccessKind, TraceEvent};

    // A column-major sweep in assembly: addresses 0x2000 + 256*j + 4*i.
    let mut trace = Vec::new();
    for i in 0..16u64 {
        for j in 0..16u64 {
            trace.push(TraceEvent {
                addr: 0x2000 + 256 * i + 4 * j,
                kind: AccessKind::Load,
            });
        }
    }
    let mut row_cache = Cache::new(CacheConfig::direct_mapped(8, 64)).unwrap();
    row_cache.run_trace(&trace);
    // Transposed (row-major within lines) order:
    let mut t2: Vec<TraceEvent> = Vec::new();
    for j in 0..16u64 {
        for i in 0..16u64 {
            t2.push(TraceEvent {
                addr: 0x2000 + 256 * i + 4 * j,
                kind: AccessKind::Load,
            });
        }
    }
    let mut col_cache = Cache::new(CacheConfig::direct_mapped(8, 64)).unwrap();
    col_cache.run_trace(&t2);
    assert!(
        row_cache.stats().hit_rate() > col_cache.stats().hit_rate(),
        "unit stride must beat large stride: {} vs {}",
        row_cache.stats().hit_rate(),
        col_cache.stats().hit_rate()
    );
}
