//! Integration: the extension modules built beyond the paper's minimum —
//! deadlock machinery, the gate-level datapath CPU, Belady/3-C analysis,
//! RLE patterns, two-level tables, exams, pre/post surveys, prefetching —
//! exercised together.

#[test]
fn deadlock_detector_agrees_with_the_philosophers() {
    use parallel::deadlock::*;
    // The structural claim: left-then-right admits a wait-for cycle...
    let g = classic_two_lock_deadlock();
    assert!(g.find_cycle().is_some());
    // ...and the ordered discipline runs to completion with plain locks.
    let r = run_philosophers(5, 50, Discipline::OrderedByIndex);
    assert!(r.completed);
}

#[test]
fn gate_level_cpu_agrees_with_swat16_on_a_countdown() {
    // The same countdown loop on both CPUs: the gate-level accumulator
    // machine and the behavioral SWAT-16.
    use circuits::cpu::{Cpu, Instr};
    use circuits::datapath::{build_acc_machine, run_acc_machine, AccInstr};
    use circuits::AluOp;

    let n = 7u8;
    // Gate level.
    let mut c = circuits::Circuit::new();
    let m = build_acc_machine(
        &mut c,
        &[
            AccInstr::LoadI(n),
            AccInstr::AddI(0xFF),
            AccInstr::Jnz(1),
            AccInstr::Halt,
        ],
    );
    run_acc_machine(&mut c, &m, 1000).expect("halts");
    assert_eq!(c.get_bus(&m.acc), 0);

    // SWAT-16.
    let mut cpu = Cpu::new();
    cpu.load_program(&[
        Instr::LoadI { rd: 1, imm: n },
        Instr::LoadI { rd: 2, imm: 1 },
        Instr::Alu {
            op: AluOp::Sub,
            rd: 1,
            rs: 1,
            rt: 2,
        },
        Instr::Beqz { rs: 1, addr: 5 },
        Instr::Jmp { addr: 2 },
        Instr::Halt,
    ])
    .unwrap();
    cpu.run(1000).unwrap();
    assert_eq!(cpu.regs[1], 0);
}

#[test]
fn opt_bounds_the_e3_workloads() {
    use memsim::cache::{Cache, CacheConfig};
    use memsim::optimal::opt_misses;
    use memsim::patterns::{matrix_sum_trace, LoopOrder};
    for order in [LoopOrder::RowMajor, LoopOrder::ColumnMajor] {
        let trace = matrix_sum_trace(0, 64, 64, 4, order);
        let opt = opt_misses(&trace, 64, 64);
        let mut real = Cache::new(CacheConfig::direct_mapped(64, 64)).unwrap();
        real.run_trace(&trace);
        assert!(opt <= real.stats().misses, "{order:?}");
        // Compulsory floor: 256 distinct blocks either way.
        assert!(opt >= 256);
    }
}

#[test]
fn rle_gun_runs_in_parallel_identically() {
    // The Gosper gun through the Lab 10 engine: parallel == serial even
    // with a growing population and dead boundaries.
    use life::patterns::{grid_with_pattern, parse_rle, GOSPER_GUN_RLE};
    use life::{Boundary, Partition};
    let cells = parse_rle(GOSPER_GUN_RLE).unwrap();
    let g = grid_with_pattern(&cells, 10, Boundary::Dead).unwrap();
    let (serial, _) = life::serial::run(g.clone(), 45);
    let par = life::parallel::run(g, 45, 6, Partition::Columns);
    assert_eq!(par.grid, serial);
    assert!(serial.population() > 36);
}

#[test]
fn two_level_tables_justify_the_design() {
    use vmem::tables::PagingGeometry;
    let g = PagingGeometry::classroom();
    // The slide's claim: a small process pays < 1% of the flat cost.
    let small = g.two_level_bytes(64, 2);
    assert!(small * 100 < g.flat_table_bytes());
}

#[test]
fn exams_are_answerable_by_the_simulators() {
    use cs31::exam::{generate, ExamKind};
    for seed in [1u64, 7, 42] {
        let e = generate(ExamKind::Final, seed);
        // Every MC key resolves and every problem has a worked solution.
        for q in &e.multiple_choice {
            assert!(q.correct < q.choices.len());
        }
        for p in &e.problems {
            assert!(!p.solution.is_empty());
        }
    }
}

#[test]
fn prepost_reflects_the_refresher_effect() {
    use survey::cohort::CohortConfig;
    use survey::prepost::{gains, generate};
    use survey::TopicId;
    let pp = generate(
        CohortConfig::default(),
        vec![TopicId::Concurrency, TopicId::Processes],
        1.0,
        99,
    );
    let g = gains(&pp);
    let conc = g.iter().find(|(l, ..)| l == "concurrency").unwrap();
    let amdahl = g.iter().find(|(l, ..)| l == "Amdahl's law").unwrap();
    assert!(conc.3 > amdahl.3, "refreshed topic gains more");
}

#[test]
fn struct_layout_connects_to_cache_lines() {
    // A padded struct wastes cache capacity: array-of-struct traversal
    // touches more blocks when the struct is 12 bytes than when it is 8.
    use bits::ctypes::{CInt, CType};
    use bits::layout::{layout_of, Field, StructLayout};
    use memsim::cache::{Cache, CacheConfig};
    use memsim::trace::TraceEvent;

    let padded = layout_of(&[
        Field::scalar("c", CType::signed(CInt::Char)),
        Field::scalar("x", CType::signed(CInt::Int)),
        Field::scalar("d", CType::signed(CInt::Char)),
    ]);
    let packed_size = StructLayout::optimal_size(&[
        Field::scalar("c", CType::signed(CInt::Char)),
        Field::scalar("x", CType::signed(CInt::Int)),
        Field::scalar("d", CType::signed(CInt::Char)),
    ]);
    assert_eq!((padded.size, packed_size), (12, 8));

    let traverse = |stride: u64| -> u64 {
        let mut c = Cache::new(CacheConfig::direct_mapped(64, 64)).unwrap();
        let trace: Vec<TraceEvent> = (0..512u64).map(|i| TraceEvent::load(i * stride)).collect();
        c.run_trace(&trace);
        c.stats().misses
    };
    assert!(
        traverse(padded.size as u64) > traverse(packed_size as u64),
        "padding costs cache misses"
    );
}

#[test]
fn division_closes_the_tinyc_gap() {
    // gcd in tinyc → asm → emulator, cross-checked against Rust.
    let (r, _) = asm::tinyc::run(
        r#"
        int gcd(int a, int b) {
            while (b != 0) { int t = b; b = a % b; a = t; }
            return a;
        }
        int main() { return gcd(252, 105); }
    "#,
    )
    .unwrap();
    fn gcd(a: i32, b: i32) -> i32 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    assert_eq!(r, gcd(252, 105));
    assert_eq!(r, 21);
}

#[test]
fn gantt_chart_shows_timesharing() {
    use os::proc::{program, Op};
    let mut k = os::Kernel::new(3);
    k.register_program("w", program(vec![Op::Compute(9), Op::Exit(0)]));
    k.spawn("w").unwrap();
    k.spawn("w").unwrap();
    k.run_until_idle(1000);
    let g = k.gantt();
    // Two rows, alternating runs of 3.
    assert!(g.contains("###"), "{g}");
    assert!(g.lines().count() >= 3);
}
