//! Integration: the course layer drives every subsystem — all labs
//! demonstrate, homework generators produce simulator-verified solutions,
//! the clicker bank's computed keys resolve, and the schedule's crate
//! references are real.

#[test]
fn all_labs_demonstrate_through_the_whole_stack() {
    for lab in cs31::all_labs() {
        let transcript =
            (lab.demonstrate)().unwrap_or_else(|e| panic!("{:?} ({}): {e}", lab.id, lab.title));
        assert!(transcript.len() > 20, "{:?} transcript too thin", lab.id);
    }
}

#[test]
fn homework_solutions_are_self_consistent_across_seeds() {
    for seed in 0..20u64 {
        for (name, generate) in cs31::homework::generators() {
            let p = generate(seed);
            assert!(!p.prompt.is_empty(), "{name} seed {seed}");
            assert!(!p.solution.is_empty(), "{name} seed {seed}");
        }
    }
}

#[test]
fn clicker_bank_keys_computed_not_guessed() {
    let bank = cs31::clicker::question_bank();
    for q in &bank {
        // The bank uses a 99 sentinel when a computed key fails; the
        // constructor asserts, but double-check the invariant here.
        assert!(q.correct < q.choices.len(), "{}", q.prompt);
    }
}

#[test]
fn schedule_crates_exist_in_workspace() {
    let known = [
        "bits", "circuits", "asm", "memsim", "vmem", "os", "cheap", "cstring", "parallel", "life",
        "survey",
    ];
    for w in cs31::week_schedule() {
        assert!(
            known.contains(&w.crate_name),
            "week {} references unknown crate {}",
            w.number,
            w.crate_name
        );
    }
}

#[test]
fn table1_module_references_resolve_to_schedule_crates() {
    // Table I (survey crate) names modules; they must be crates the course
    // schedule (cs31 crate) actually teaches with.
    let taught: Vec<&str> = cs31::week_schedule().iter().map(|w| w.crate_name).collect();
    for row in survey::tcpp::table1() {
        let root = row
            .module
            .split(&[':', ' ', ','][..])
            .next()
            .expect("nonempty module");
        assert!(
            taught.contains(&root) || root == "parallel" || root == "life" || root == "asm",
            "Table I topic {:?} maps to untaught module {:?}",
            row.topic,
            row.module
        );
    }
}

#[test]
fn figure1_reflects_course_emphasis_end_to_end() {
    // The figure's deepest-rated topics must be the ones the schedule
    // spends the most weeks on (C programming, memory, parallelism).
    let fig = survey::figure1::generate(survey::cohort::CohortConfig::default(), 31);
    assert!(fig.check_paper_claims().is_empty());
    let best = fig
        .results
        .iter()
        .max_by(|a, b| a.mean.partial_cmp(&b.mean).expect("finite"))
        .expect("nonempty");
    let heavy = survey::topics::heavily_emphasized();
    assert!(
        heavy.contains(&best.topic.id),
        "top-rated topic {:?} should be a heavily-emphasized one",
        best.topic.label
    );
}
