//! Integration: the `serve` subsystem end to end — concurrent clients
//! against the full server stack (pool + cache + admission), the
//! compute-once guarantee observed from outside the crate, and the
//! graceful-shutdown contract that no accepted request is ever dropped.

use serve::server::SubmitError;
use serve::{CourseServer, Request, ServerConfig, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_clients_share_one_compute_per_key() {
    // 8 clients all ask for the same 4 homework variants; the cache
    // stats must show exactly 4 computes no matter the interleaving.
    let server = Arc::new(CourseServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    }));
    thread::scope(|s| {
        for _ in 0..8 {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for seed in 0..4u64 {
                    let resp = server
                        .submit(Request::Homework {
                            generator: "fork_puzzle".into(),
                            seed,
                        })
                        .expect("queue sized for the full load")
                        .wait();
                    assert!(resp.ok, "{}", resp.body);
                }
            });
        }
    });
    let st = server.stats();
    assert_eq!(
        st.cache.misses, 4,
        "each distinct request computes exactly once"
    );
    assert_eq!(st.cache.hits, 8 * 4 - 4);
    assert_eq!(st.accepted, 32);
    assert_eq!(st.completed, 32);
    assert_eq!(st.pool.panicked, 0);
}

#[test]
fn shutdown_never_drops_an_accepted_request() {
    // Clients race shutdown: whatever was accepted before admission
    // closed must resolve; whatever was refused must say ShuttingDown
    // or Busy — never hang, never vanish.
    let server = Arc::new(CourseServer::new(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServerConfig::default()
    }));
    let accepted = Arc::new(AtomicU64::new(0));
    let resolved = Arc::new(AtomicU64::new(0));
    thread::scope(|s| {
        for client in 0..4u64 {
            let server = Arc::clone(&server);
            let accepted = Arc::clone(&accepted);
            let resolved = Arc::clone(&resolved);
            s.spawn(move || {
                for i in 0..50u64 {
                    match server.submit(Request::Homework {
                        generator: "binary_arithmetic".into(),
                        seed: client * 1000 + i,
                    }) {
                        Ok(ticket) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            assert!(ticket.wait().ok);
                            resolved.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(SubmitError::Busy(r)) => {
                            assert!(r.retry_after_ms >= 1);
                        }
                        Err(SubmitError::ShuttingDown(_)) => return,
                    }
                }
            });
        }
        // Let some requests land, then pull the plug mid-stream.
        thread::sleep(std::time::Duration::from_millis(5));
        server.shutdown();
    });
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        resolved.load(Ordering::SeqCst),
        "an accepted ticket did not resolve"
    );
    let st = server.stats();
    assert_eq!(
        st.accepted, st.completed,
        "server drained everything it admitted"
    );
}

#[test]
fn pool_backed_par_matches_scoped_par_across_crates() {
    // The serve::par variants must agree with parallel::par on real
    // data, and keep agreeing across many reuses of the same pool.
    let pool = ThreadPool::new(4);
    let data: Vec<u64> = (0..10_000).collect();
    for round in 0..5u64 {
        let scoped = parallel::par::par_map(&data, 4, |&x| x.wrapping_mul(round + 1));
        let pooled = serve::par::par_map(&pool, &data, move |&x| x.wrapping_mul(round + 1));
        assert_eq!(scoped, pooled);

        let scoped_sum = parallel::par::par_reduce(
            &data,
            4,
            0u64,
            |a, &x| a ^ x.rotate_left(round as u32),
            |a, b| a ^ b,
        );
        let pooled_sum = serve::par::par_reduce(
            &pool,
            &data,
            0u64,
            move |a, &x| a ^ x.rotate_left(round as u32),
            |a, b| a ^ b,
        );
        assert_eq!(scoped_sum, pooled_sum);
    }
    // One pool served all ten calls: spawn-per-call would have needed
    // 40 threads; the pool's workers just kept taking jobs.
    let st = pool.stats();
    assert_eq!(st.workers, 4);
    assert!(st.finished >= 10);
    assert_eq!(st.panicked, 0);
}

#[test]
fn server_grades_like_the_autograder_itself() {
    // The server is a front end, not a fork: its grade for a submission
    // must byte-for-byte match calling cs31::autograde directly.
    let submission = "
        main:
            movl $0, %eax
            movl $0, %edi
            cmpl $0, %ecx
            je done
        loop:
            addl (%esi,%edi,4), %eax
            addl $1, %edi
            cmpl %ecx, %edi
            jne loop
        done:
            hlt
    ";
    let direct =
        cs31::autograde::grade(submission, &cs31::autograde::sum_array_rubric(), 200_000).render();
    let server = CourseServer::new(ServerConfig::default());
    let via_server = server
        .submit(Request::Grade {
            submission: submission.into(),
        })
        .unwrap()
        .wait();
    assert!(via_server.ok);
    assert_eq!(via_server.body, direct);
}
