//! Integration: the parallelism stack under stress — Lab 10 correctness
//! at scale, bounded-buffer pipelines, and barrier/semaphore interplay
//! across crates.

use life::{Boundary, Grid, Partition};
use parallel::{Barrier, BoundedBuffer};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn life_parallel_matches_serial_on_a_large_grid() {
    let g = Grid::random(96, 80, 0.35, 2024, Boundary::Toroidal).unwrap();
    let (expect, expect_stats) = life::serial::run(g.clone(), 25);
    for (threads, partition) in [
        (2, Partition::Rows),
        (5, Partition::Columns),
        (16, Partition::Rows),
    ] {
        let got = life::parallel::run(g.clone(), 25, threads, partition);
        assert_eq!(got.grid, expect, "t={threads} {partition:?}");
        assert_eq!(got.history, expect_stats);
    }
}

#[test]
fn life_dead_boundary_parallel_matches_serial() {
    let g = Grid::random(40, 64, 0.45, 7, Boundary::Dead).unwrap();
    let (expect, _) = life::serial::run(g.clone(), 15);
    let got = life::parallel::run(g, 15, 6, Partition::Columns);
    assert_eq!(got.grid, expect);
}

/// A two-stage pipeline built from two bounded buffers: producers →
/// squarers → accumulators. Every value must flow through exactly once.
#[test]
fn bounded_buffer_pipeline_two_stages() {
    let stage1: BoundedBuffer<u64> = BoundedBuffer::new(8);
    let stage2: BoundedBuffer<u64> = BoundedBuffer::new(8);
    let total = AtomicU64::new(0);
    let n = 2_000u64;

    std::thread::scope(|s| {
        // Producer.
        s.spawn(|| {
            for i in 1..=n {
                stage1.put(i).unwrap();
            }
            stage1.close();
        });
        // Two middle workers square values.
        for _ in 0..2 {
            let stage1 = &stage1;
            let stage2 = &stage2;
            s.spawn(move || {
                while let Some(v) = stage1.take() {
                    stage2.put(v * v).unwrap();
                }
            });
        }
        // The consumer knows the item count, so it can stop (and close
        // stage2) without a separate completion latch.
        let total = &total;
        let stage2 = &stage2;
        s.spawn(move || {
            let mut got = 0;
            while got < n {
                if let Some(v) = stage2.take() {
                    total.fetch_add(v, Ordering::Relaxed);
                    got += 1;
                }
            }
            stage2.close();
        });
    });

    let expect: u64 = (1..=n).map(|i| i * i).sum();
    assert_eq!(total.load(Ordering::Relaxed), expect);
}

/// Barrier + shared stats (the Lab 10 skeleton) in isolation: per-round
/// sums computed by 8 threads must equal the serial sums.
#[test]
fn barrier_round_structure_computes_correct_partial_sums() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let barrier = Barrier::new(THREADS);
    let round_sums: Vec<AtomicU64> = (0..ROUNDS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let barrier = &barrier;
            let round_sums = &round_sums;
            s.spawn(move || {
                for (r, slot) in round_sums.iter().enumerate() {
                    // Each thread contributes f(t, r); the barrier makes the
                    // round sum complete before anyone proceeds.
                    slot.fetch_add((t as u64 + 1) * (r as u64 + 1), Ordering::SeqCst);
                    barrier.wait();
                    let expected: u64 = (1..=THREADS as u64).map(|x| x * (r as u64 + 1)).sum();
                    assert_eq!(slot.load(Ordering::SeqCst), expected, "round {r}");
                }
            });
        }
    });
}

/// The machine model's speedup never exceeds its two hard ceilings:
/// linear in the processor count, and the lock-serialization floor
/// (parallel time can't drop below the total serialized critical time).
/// Unlike a naive Amdahl bound, the model correctly lets one thread's
/// critical section overlap other threads' *compute*.
#[test]
fn machine_model_respects_hard_speedup_ceilings() {
    use parallel::machine::{life_like_workload, simulate, MachineConfig};
    let cfg = MachineConfig {
        cores: 16,
        barrier_cost: 0,
        lock_overhead: 0,
        contention: 0.0,
    };
    for crit in [0u64, 10_000, 50_000] {
        for threads in [2usize, 4, 8, 16] {
            let total_work = 16_000_000u64;
            let rounds = 10;
            let wl = life_like_workload(total_work, threads, rounds, crit);
            let r = simulate(cfg, &wl).expect("well-formed");
            let total_crit = (crit * threads as u64 * rounds as u64) as f64;
            let lock_floor_bound = if total_crit > 0.0 {
                r.serial_time / total_crit
            } else {
                f64::INFINITY
            };
            let bound = (threads as f64).min(lock_floor_bound);
            assert!(
                r.speedup() <= bound + 1e-6,
                "crit={crit} t={threads}: model {:.2} > ceiling {:.2}",
                r.speedup(),
                bound
            );
        }
    }
}

/// Different seeds, grids and partitions — a broad sweep of the Lab 10
/// equivalence (complements the per-crate proptest).
#[test]
fn life_equivalence_sweep() {
    for seed in [1u64, 99, 777] {
        let g = Grid::random(33, 17, 0.5, seed, Boundary::Toroidal).unwrap();
        let (expect, _) = life::serial::run(g.clone(), 11);
        for threads in [3, 9] {
            let got = life::parallel::run(g.clone(), 11, threads, Partition::Rows);
            assert_eq!(got.grid, expect, "seed {seed} t {threads}");
        }
    }
}
